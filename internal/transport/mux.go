package transport

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"
)

// maxFrame bounds a wire payload; anything larger is a protocol violation
// and kills the connection.
const maxFrame = 16 << 20

// frameHeaderSize is [4-byte payload length][8-byte request id].
const frameHeaderSize = 12

// maxPooledBuf caps the encode buffers kept in the frame pool: the
// occasional giant frame (a bulk migrate or re-replicate) is returned to
// the allocator instead of pinning megabytes in the pool forever.
const maxPooledBuf = 64 << 10

// Adaptive flush window bounds (see connWriter.loop): the window starts at
// zero (flush immediately), grows only while flushes demonstrably batch
// multiple frames, and never exceeds maxFlushWindow so a lone frame is
// delayed by at most a fraction of a loopback round trip.
const (
	baseFlushWindow = 20 * time.Microsecond
	maxFlushWindow  = 100 * time.Microsecond
)

// wireFrame is a reusable encode buffer for one outgoing frame. Encoding
// writes the header placeholder and the payload into one contiguous buffer
// — no intermediate marshal allocation, no header+payload copy — and the
// buffer (with its json.Encoder's internal state) is recycled through
// framePool once the frame has left for the wire.
type wireFrame struct {
	buf bytes.Buffer // JSON codec scratch
	enc *json.Encoder
	out []byte // binary codec scratch
	bin bool   // which scratch holds the current frame
}

var framePool = sync.Pool{New: func() interface{} {
	f := &wireFrame{}
	f.enc = json.NewEncoder(&f.buf)
	return f
}}

func acquireFrame() *wireFrame { return framePool.Get().(*wireFrame) }

func releaseFrame(f *wireFrame) {
	if f.buf.Cap() > maxPooledBuf || cap(f.out) > maxPooledBuf {
		return
	}
	framePool.Put(f)
}

// encode fills the frame with header (payload length + request id) and the
// payload for v in the given codec. Encoding failures (unserializable
// value, oversized payload) happen before anything touches the wire, so
// they never corrupt the connection's frame stream. The frame is reusable
// after an error.
func (f *wireFrame) encode(id uint64, v interface{}, codec uint8) error {
	f.bin = codec >= codecBinary
	if f.bin {
		var hdr [frameHeaderSize]byte
		out := append(f.out[:0], hdr[:]...)
		switch m := v.(type) {
		case *Request:
			out = appendRequest(out, m)
		case *Response:
			out = appendResponse(out, m)
		default:
			return fmt.Errorf("transport: cannot binary-encode %T", v)
		}
		f.out = out
		payload := len(out) - frameHeaderSize
		if payload > maxFrame {
			return fmt.Errorf("transport: frame of %d bytes exceeds limit", payload)
		}
		binary.BigEndian.PutUint32(out[0:4], uint32(payload))
		binary.BigEndian.PutUint64(out[4:12], id)
		return nil
	}
	f.buf.Reset()
	var hdr [frameHeaderSize]byte
	f.buf.Write(hdr[:])
	if err := f.enc.Encode(v); err != nil {
		return err
	}
	// The payload includes the encoder's trailing newline; Unmarshal on the
	// receive side skips trailing whitespace.
	payload := f.buf.Len() - frameHeaderSize
	if payload > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", payload)
	}
	b := f.buf.Bytes()
	binary.BigEndian.PutUint32(b[0:4], uint32(payload))
	binary.BigEndian.PutUint64(b[4:12], id)
	return nil
}

// bytes returns the encoded frame, valid until the next encode or release.
func (f *wireFrame) bytes() []byte {
	if f.bin {
		return f.out
	}
	return f.buf.Bytes()
}

// writeMuxFrame encodes and sends one frame with a single Write — the
// unshared (one frame per connection) discipline used by tests and the
// dial-per-call baseline. Legacy framing: JSON payload, no handshake.
func writeMuxFrame(w io.Writer, id uint64, v interface{}) error {
	f := acquireFrame()
	defer releaseFrame(f)
	if err := f.encode(id, v, codecJSON); err != nil {
		return err
	}
	_, err := w.Write(f.bytes())
	return err
}

// connWriter owns one connection's write half: callers enqueue encoded
// frames and a dedicated goroutine drains everything queued before each
// flush, so under high in-flight counts many frames leave per syscall
// while a lone frame still flushes immediately. Between those regimes an
// adaptive flush window holds a lone frame for a few tens of microseconds
// — but only while recent flushes prove that batching is actually
// happening — trading a bounded sliver of latency for large syscall
// savings under load. The first write error fires onErr (once) and stops
// the writer — frame state past an error is unknown, so the connection
// must die with it.
type connWriter struct {
	conn    net.Conn
	timeout time.Duration
	onErr   func(error)

	frames chan *wireFrame
	stop   chan struct{}
	once   sync.Once
}

func startConnWriter(conn net.Conn, timeout time.Duration, onErr func(error)) *connWriter {
	w := &connWriter{
		conn:    conn,
		timeout: timeout,
		onErr:   onErr,
		frames:  make(chan *wireFrame, 256),
		stop:    make(chan struct{}),
	}
	go w.loop()
	return w
}

var errWriterClosed = errors.New("transport: connection writer closed")

// enqueue hands one frame to the writer goroutine, blocking only if the
// queue is full (backpressure against a stalled peer). The caller's
// context bounds the wait so a slow-draining connection cannot hold a
// call past its deadline. On success the writer owns the frame and will
// release it back to the pool after the wire write; on failure ownership
// stays with the caller.
func (w *connWriter) enqueue(ctx context.Context, frame *wireFrame) error {
	select {
	case w.frames <- frame:
		return nil
	case <-w.stop:
		return errWriterClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close stops the writer goroutine; queued frames are dropped (the
// connection is dying anyway). Idempotent.
func (w *connWriter) close() {
	w.once.Do(func() { close(w.stop) })
}

func (w *connWriter) loop() {
	bw := bufio.NewWriter(w.conn)
	// window is the adaptive flush hold for lone frames. It grows
	// (bounded) each time a flush carries more than one frame and halves
	// each time it carries exactly one, so idle connections converge to
	// flush-immediately while loaded ones amortise syscalls.
	var window time.Duration
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-w.stop:
			return
		case frame := <-w.frames:
			_ = w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
			_, err := bw.Write(frame.bytes())
			releaseFrame(frame)
			n := 1
			// Yield once before draining: concurrent callers get a chance
			// to enqueue, so a burst leaves in one flush instead of many.
			runtime.Gosched()
		drain:
			for err == nil {
				select {
				case next := <-w.frames:
					_, err = bw.Write(next.bytes())
					releaseFrame(next)
					n++
				default:
					if n == 1 && window > 0 {
						// A lone frame right after batched flushes: hold it
						// briefly — under real load the next frame lands
						// within the window and shares the syscall.
						timer.Reset(window)
						select {
						case next := <-w.frames:
							if !timer.Stop() {
								<-timer.C
							}
							_, err = bw.Write(next.bytes())
							releaseFrame(next)
							n++
							continue
						case <-timer.C:
						case <-w.stop:
							return
						}
					}
					break drain
				}
			}
			if err == nil {
				err = bw.Flush()
			}
			if n > 1 {
				if window = 2*window + baseFlushWindow; window > maxFlushWindow {
					window = maxFlushWindow
				}
			} else {
				window /= 2
			}
			if err != nil {
				w.onErr(err)
				w.close()
				return
			}
		}
	}
}

// readMuxFrame receives one frame and decodes its payload into v using the
// connection's negotiated codec, returning the frame's request id. A
// length over maxFrame or an undecodable payload is a protocol violation:
// the caller must close the connection. Decoded byte slices alias the
// per-frame read buffer, which is never reused.
func readMuxFrame(r *bufio.Reader, v interface{}, codec uint8) (uint64, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	id := binary.BigEndian.Uint64(hdr[4:12])
	if n > maxFrame {
		return 0, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, err
	}
	if codec >= codecBinary {
		var err error
		switch m := v.(type) {
		case *Request:
			err = decodeRequest(buf, m)
		case *Response:
			err = decodeResponse(buf, m)
		default:
			err = fmt.Errorf("transport: cannot binary-decode %T", v)
		}
		if err != nil {
			return 0, fmt.Errorf("transport: bad frame payload: %w", err)
		}
		return id, nil
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return 0, fmt.Errorf("transport: bad frame payload: %w", err)
	}
	return id, nil
}

// errConnBroken marks a connection-level failure (as opposed to a per-call
// timeout): the pooled connection is unusable and must be evicted. sent
// distinguishes whether the request may have reached the peer — only
// unsent requests are safe to retry on a fresh connection (a sent request
// could otherwise execute twice, which non-idempotent ops like migrate
// cannot tolerate).
type errConnBroken struct {
	cause error
	sent  bool
}

func (e errConnBroken) Error() string {
	return fmt.Sprintf("transport: connection broken: %v", e.cause)
}
func (e errConnBroken) Unwrap() error { return e.cause }

// muxConn is one client-side persistent connection: many concurrent calls
// share it, each tagged with a request id; a demux read loop routes
// response frames to the waiting caller's channel. The connection's codec
// is fixed at handshake time. A semaphore caps the calls in flight — the
// client half of transport backpressure: a caller that cannot get a slot
// before its deadline fails with ErrOverloaded instead of piling onto a
// peer that is already behind. The first I/O error breaks the connection:
// all in-flight calls fail, and the pool evicts it.
type muxConn struct {
	conn  net.Conn
	wr    *connWriter
	codec uint8
	sem   chan struct{} // in-flight cap; nil = uncapped

	mu       sync.Mutex
	pending  map[uint64]chan *Response
	nextID   uint64
	broken   bool
	cause    error
	lastUsed time.Time

	dead chan struct{} // closed when the read loop exits
}

// newMuxConn wraps a dialed (and handshaken) connection and starts its
// demux loop. maxInflight caps concurrent calls on this connection (0 =
// uncapped).
func newMuxConn(conn net.Conn, writeTimeout time.Duration, codec uint8, maxInflight int) *muxConn {
	c := &muxConn{
		conn:     conn,
		codec:    codec,
		pending:  make(map[uint64]chan *Response),
		lastUsed: time.Now(),
		dead:     make(chan struct{}),
	}
	if maxInflight > 0 {
		c.sem = make(chan struct{}, maxInflight)
	}
	c.wr = startConnWriter(conn, writeTimeout, c.fail)
	go c.readLoop()
	return c
}

// readLoop demultiplexes response frames to their callers until the
// connection dies.
func (c *muxConn) readLoop() {
	br := bufio.NewReader(c.conn)
	for {
		var resp Response
		id, err := readMuxFrame(br, &resp, c.codec)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.lastUsed = time.Now()
		c.mu.Unlock()
		if ok {
			ch <- &resp // buffered: never blocks the loop
		}
		// An unknown id is a response whose caller already timed out and
		// abandoned the slot: drop it, the connection stays healthy.
	}
}

// fail marks the connection broken, closes it, and wakes every in-flight
// caller. Idempotent; only the first cause is kept.
func (c *muxConn) fail(cause error) {
	c.mu.Lock()
	if c.broken {
		c.mu.Unlock()
		return
	}
	c.broken = true
	c.cause = cause
	c.pending = make(map[uint64]chan *Response)
	c.mu.Unlock()
	c.wr.close()
	_ = c.conn.Close()
	close(c.dead)
}

// isBroken reports whether the connection has failed.
func (c *muxConn) isBroken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// inflight returns the number of calls awaiting a response.
func (c *muxConn) inflight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// idleSince returns the last moment the connection did useful work, or the
// zero time if calls are still in flight.
func (c *muxConn) idleSince() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pending) > 0 {
		return time.Time{}
	}
	return c.lastUsed
}

// call sends one request over the shared connection and waits for its
// response, the context deadline, or connection failure. A context expiry
// abandons the response slot without harming the connection; a write
// failure breaks the connection (frame state is unknown past it). A
// context that expires while the in-flight cap is saturated — before the
// call even acquired a slot — fails with ErrOverloaded, the typed signal
// that this client is outrunning the peer.
func (c *muxConn) call(ctx context.Context, req *Request) (*Response, error) {
	if c.sem != nil {
		select {
		case c.sem <- struct{}{}:
		default:
			// Saturated: wait for a slot, but surface saturation as
			// overload rather than a generic deadline when the wait loses.
			select {
			case c.sem <- struct{}{}:
			case <-c.dead:
				c.mu.Lock()
				cause := c.cause
				c.mu.Unlock()
				return nil, errConnBroken{cause: cause}
			case <-ctx.Done():
				return nil, fmt.Errorf("%w: %d calls in flight (%v)", ErrOverloaded, cap(c.sem), ctx.Err())
			}
		}
		defer func() { <-c.sem }()
	}

	c.mu.Lock()
	if c.broken {
		cause := c.cause
		c.mu.Unlock()
		return nil, errConnBroken{cause: cause}
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *Response, 1)
	c.pending[id] = ch
	c.lastUsed = time.Now()
	c.mu.Unlock()

	frame := acquireFrame()
	if err := frame.encode(id, req, c.codec); err != nil {
		// The request itself is unsendable; the connection is untouched.
		releaseFrame(frame)
		c.forget(id)
		return nil, err
	}
	if err := c.wr.enqueue(ctx, frame); err != nil {
		releaseFrame(frame)
		c.forget(id)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr // deadline while queueing; nothing was sent
		}
		c.mu.Lock()
		if c.cause != nil {
			err = c.cause
		}
		c.mu.Unlock()
		return nil, errConnBroken{cause: err}
	}

	select {
	case resp := <-ch:
		return resp, nil
	case <-c.dead:
		c.forget(id)
		c.mu.Lock()
		cause := c.cause
		c.mu.Unlock()
		// The frame was queued and possibly delivered: not retryable.
		return nil, errConnBroken{cause: cause, sent: true}
	case <-ctx.Done():
		c.forget(id)
		return nil, ctx.Err()
	}
}

// forget abandons a pending call's response slot.
func (c *muxConn) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// close tears the connection down, failing any in-flight calls.
func (c *muxConn) close() {
	c.fail(errors.New("transport: connection closed"))
}
