package oscar

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestCacheStaleSafety is the cross-backend cache contract: with the route
// and hot-key caches on (the default), a crash that moves arcs must never
// produce a stale answer — post-crash writes re-resolve their routes,
// overwritten values win immediately, and deletes do not resurrect from a
// cached copy. The same scenario runs against all three backends, like the
// main conformance table.
func TestCacheStaleSafety(t *testing.T) {
	harnesses := []func(*testing.T) *conformanceHarness{
		simHarness,
		memClusterHarness,
		tcpClusterHarness,
	}
	for _, mk := range harnesses {
		h := mk(t)
		t.Run(h.name, func(t *testing.T) {
			defer h.close()
			runCacheStaleSafety(t, h)
		})
	}
}

func runCacheStaleSafety(t *testing.T, h *conformanceHarness) {
	ctx := context.Background()
	cl := h.client
	const keys = 24
	key := func(i int) Key { return KeyFromFloat(float64(i)/keys + 0.004) }
	val := func(gen string, i int) []byte { return []byte(fmt.Sprintf("%s-%d", gen, i)) }

	for i := 0; i < keys; i++ {
		if _, err := cl.Put(ctx, key(i), val("v1", i)); err != nil {
			t.Fatalf("seed put %d: %v", i, err)
		}
	}
	// Prime the route and hot-key caches with one read per key.
	for i := 0; i < keys; i++ {
		got, err := cl.Get(ctx, key(i))
		if err != nil {
			t.Fatalf("prime get %d: %v", i, err)
		}
		if string(got.Value) != string(val("v1", i)) {
			t.Fatalf("prime get %d = %q", i, got.Value)
		}
	}

	// Kill a minority of peers and heal: a fifth of the cached routes now
	// name corpses or peers whose arcs moved.
	h.crash()

	// Stale routes must re-resolve, not serve through a corpse: every
	// post-crash write lands on the healed ring and reads back fresh.
	for i := 0; i < keys; i++ {
		if _, err := cl.Put(ctx, key(i), val("v2", i)); err != nil {
			t.Fatalf("post-crash put %d: %v", i, err)
		}
	}
	for i := 0; i < keys; i++ {
		got, err := cl.Get(ctx, key(i))
		if err != nil {
			t.Fatalf("post-crash get %d: %v", i, err)
		}
		if string(got.Value) != string(val("v2", i)) {
			t.Fatalf("post-crash get %d = %q, want %q — a stale cached answer", i, got.Value, val("v2", i))
		}
	}

	// Hot-copy freshness: an overwrite must win over the cached value on
	// the very next read, and a delete must not resurrect from the cache.
	for i := 0; i < keys; i++ {
		if _, err := cl.Put(ctx, key(i), val("v3", i)); err != nil {
			t.Fatalf("overwrite %d: %v", i, err)
		}
		got, err := cl.Get(ctx, key(i))
		if err != nil || string(got.Value) != string(val("v3", i)) {
			t.Fatalf("read after overwrite %d = %q (%v), want %q", i, got.Value, err, val("v3", i))
		}
		if _, err := cl.Delete(ctx, key(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if _, err := cl.Get(ctx, key(i)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key %d: get = %v, want ErrNotFound (cache resurrection)", i, err)
		}
	}

	// Both caches' counters surface through Info on every backend.
	info, err := cl.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.RouteCacheHits+info.RouteCacheMisses == 0 {
		t.Error("route cache counters never moved")
	}
	if info.HotKeyCacheHits+info.HotKeyCacheMisses == 0 {
		t.Error("hot-key cache counters never moved")
	}
}
