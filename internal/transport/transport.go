// Package transport provides the message fabric for the live (non-simulated)
// overlay runtime in internal/p2p: a blocking request/response Call
// abstraction with two implementations — an in-memory channel fabric for
// tests and single-process clusters, and a pooled, multiplexed TCP fabric
// for real deployments.
//
// The TCP fabric keeps a small pool of persistent connections per peer
// (lazy dial, idle reaping) and multiplexes many in-flight calls over each
// connection: every frame is [4-byte length][8-byte request id][payload],
// a per-connection demux loop routes responses to their waiting callers by
// id, and a broken connection fails its in-flight calls, is evicted from
// the pool, and is replaced by a fresh dial on the next call. The payload
// codec — a compact binary tag/length/value format by default, JSON for
// legacy peers — is negotiated once per connection by a one-byte version
// handshake, and connections can be TLS-wrapped end to end (WithTLS).
// Per-call deadlines come from the caller's context (with a transport
// default when the context carries none); a call that times out simply
// abandons its response slot without poisoning the shared connection.
//
// Backpressure is symmetric: each client connection caps its in-flight
// calls and each endpoint caps its concurrently-running handlers, so an
// overloaded node sheds excess requests with a typed ErrOverloaded —
// deterministically and with a bounded goroutine count — instead of
// queueing without limit.
//
// Delivery is at-most-once: a call on a connection that proves stale
// before the request is sent retries once on a fresh dial, but once a
// request may have reached the peer a failure surfaces as ErrUnreachable
// without retrying, so no op — idempotent or not (migrate is not) — ever
// executes twice for one Call.
package transport

import (
	"context"
	"errors"
	"sync"

	"github.com/oscar-overlay/oscar/internal/antientropy"
	"github.com/oscar-overlay/oscar/internal/keyspace"
	"github.com/oscar-overlay/oscar/internal/storage"
)

// Addr addresses one node endpoint. For the TCP fabric it is "host:port";
// for the in-memory fabric an arbitrary unique string.
type Addr string

// PeerRef pairs a peer's address with its identifier — the unit of routing
// tables and neighbour lists.
type PeerRef struct {
	Addr Addr
	Key  keyspace.Key
}

// Op enumerates the RPC operations of the overlay protocol.
type Op string

// The overlay protocol operations.
const (
	OpPing      Op = "ping"       // liveness probe
	OpInfo      Op = "info"       // peer's key, caps, degrees
	OpGetSucc   Op = "get_succ"   // successor pointer
	OpGetPred   Op = "get_pred"   // predecessor pointer
	OpNotify    Op = "notify"     // Chord notify: candidate predecessor
	OpNeighbors Op = "neighbors"  // neighbour refs within a range + degree
	OpLink      Op = "link"       // request a long-range in-link
	OpUnlink    Op = "unlink"     // release a long-range in-link
	OpFindOwner Op = "find_owner" // iterative routing step: best next hop
	OpPut       Op = "put"        // store an item (owner only)
	OpGet       Op = "get"        // fetch an item (owner or replica)
	OpDelete    Op = "delete"     // remove an item (owner only)
	// OpScan is one page of a streaming arc scan: the responder returns up
	// to a frame-bounded page of live items in the requested range from its
	// merged view (own shard plus replica copies, tombstones honoured),
	// clockwise from Range.Start — the cursor. More with a resume Cursor
	// asks the requester to call the same peer again before hopping to the
	// successor (Peer). Non-destructive, unlike migrate.
	OpScan    Op = "scan"    // one cursor-paged scan step over the local merged view
	OpMigrate Op = "migrate" // hand over items in a range (join)

	// Replication protocol: the owner of an arc pushes copies of its items
	// directly to the nodes on its successor list — no routing involved.
	// Replication responses carry an ack count (Response.Acks) so writers
	// can enforce a write concern instead of trusting silence.
	OpSuccList     Op = "succ_list"     // successor-list snapshot (Peer carries the predecessor)
	OpReplicate    Op = "replicate"     // owner→replica push of copies, tombstones and drops
	OpReplicateDel Op = "replicate_del" // owner→replica push of a delete

	// Anti-entropy protocol: the owner of an arc reconciles its replicas
	// against a Merkle-style digest instead of re-shipping the arc. One
	// digest exchange detects divergence in O(1) traffic; one pull fetches
	// the per-key states of the mismatched buckets; targeted replicate
	// pushes carry only the difference.
	OpDigest   Op = "digest"    // replica's leaf vector for an owner's arc
	OpSyncPull Op = "sync_pull" // replica's per-key states in given buckets

	// Read-repair protocol: a reader that was served by a replica after
	// the owner answered without any record of the key nudges the owner
	// to digest-pull the divergence back from that replica (and then
	// re-sync its chain). The nudge is cheap and asynchronous; the owner
	// deduplicates concurrent nudges.
	OpReadRepair Op = "read_repair" // reader→owner: pull your arc's divergence from From

	// Hot-key cache validation: a requester holding a cached copy of a
	// read-heavy key asks the owner (or, when the owner is unreachable, a
	// chain member) for the key's current item hash instead of the value.
	// A matching digest serves the cached copy without shipping the value;
	// anything else — mismatch, tombstone, no record, not-owner — makes
	// the requester fall back to the full read path, so a stale cached
	// copy always loses to the ring.
	OpKeyHash      Op = "key_hash"       // owner-gated: item hash + replica chain
	OpKeyHashChain Op = "key_hash_chain" // ungated chain fallback of key_hash
)

// Request is the wire request. One struct covers all ops; unused fields are
// zero (JSON-omitted).
type Request struct {
	Op   Op      `json:"op"`
	From PeerRef `json:"from,omitempty"`

	Key   keyspace.Key   `json:"key,omitempty"`
	Range keyspace.Range `json:"range,omitempty"`
	Value []byte         `json:"value,omitempty"`
	Limit int            `json:"limit,omitempty"`
	// Items carries item copies for replicate pushes (write-time copies and
	// anti-entropy repair batches alike).
	Items []storage.Item `json:"items,omitempty"`
	// Tombs carries deletes a replica must apply: each key is cleared and
	// marked deleted (replicate pushes, arc migrations).
	Tombs []storage.Tombstone `json:"tombs,omitempty"`
	// Drop lists keys a replica must forget entirely — stray state the arc
	// owner has no record of (no copy, no tombstone).
	Drop []keyspace.Key `json:"drop,omitempty"`
	// Depth is the digest tree depth for digest / sync_pull.
	Depth int `json:"depth,omitempty"`
	// Buckets selects the digest leaf buckets a sync_pull asks about.
	Buckets []int `json:"buckets,omitempty"`
	// Values asks a sync_pull to return the item values and tombstones of
	// the selected buckets alongside the per-key states, so a read-repair
	// pull can diff and heal in one RPC.
	Values bool `json:"values,omitempty"`
	// States carries the per-key state a recovered joiner already holds
	// of the arc it is claiming (migrate): the responder filters items
	// the joiner proved it has, shipping only the downtime delta.
	States []antientropy.State `json:"states,omitempty"`
	// SizeEst piggybacks the sender's ring-size estimate on stabilisation
	// traffic (succ_list); receivers fold it into their own — the gossip
	// half of membership estimation. 0 means "no estimate yet".
	SizeEst float64 `json:"size_est,omitempty"`
	// Exclude lists peers the query has discovered dead (or routeless);
	// find_owner skips them — the live analogue of the simulator's
	// per-query known-dead set.
	Exclude []Addr `json:"exclude,omitempty"`
}

// Response is the wire response.
type Response struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`

	Peer   PeerRef   `json:"peer,omitempty"`
	Peers  []PeerRef `json:"peers,omitempty"`
	Degree int       `json:"degree,omitempty"`
	Value  []byte    `json:"value,omitempty"`
	Found  bool      `json:"found,omitempty"`
	// Deleted reports, on a negative get, that the responder holds a
	// tombstone for the key: the miss is an authoritative delete, not a
	// hole a fallback read should try to fill from the replica chain.
	Deleted bool `json:"deleted,omitempty"`
	// Acks is the number of stores that applied a write-path op (put,
	// delete, replicate, replicate_del): 1 from the responder itself.
	// Writers sum it across the owner and the chain to enforce a write
	// concern.
	Acks  int            `json:"acks,omitempty"`
	Items []storage.Item `json:"items,omitempty"`
	// More reports that a migrate or scan response was truncated to bound
	// the frame size and the requester must call again for the rest of the
	// range (migrate extracts, so repeated calls progress; scan resumes
	// from Cursor).
	More bool `json:"more,omitempty"`
	// Cursor is the resume key of a truncated scan page (set when More):
	// the next scan request against the same range continues from here —
	// one past the last returned item.
	Cursor keyspace.Key `json:"cursor,omitempty"`
	// Tombs carries the tombstones of a migrated arc (migrate): the delete
	// knowledge travels with the items it covers.
	Tombs []storage.Tombstone `json:"tombs,omitempty"`
	// Digest is the responder's digest-tree leaf vector for the requested
	// arc (digest).
	Digest []uint64 `json:"digest,omitempty"`
	// States is the responder's per-key sync states for the requested
	// buckets (sync_pull).
	States []antientropy.State `json:"states,omitempty"`
	// SizeEst returns the responder's ring-size estimate on succ_list.
	SizeEst float64 `json:"size_est,omitempty"`
	MaxIn   int     `json:"max_in,omitempty"`
	MaxOut  int     `json:"max_out,omitempty"`
	InDeg   int     `json:"in_deg,omitempty"`
}

// Handler processes one incoming request. Handlers run on transport
// goroutines and may be invoked concurrently.
type Handler func(*Request) *Response

// Transport is one node's endpoint on the fabric.
type Transport interface {
	// Addr returns the endpoint's address.
	Addr() Addr
	// Call sends a request to a remote endpoint and waits for its response.
	// A transport-level failure (dead peer, closed endpoint) returns an
	// error — the live-network analogue of probing a stale link. It is
	// CallCtx with a background context (the transport's default per-call
	// timeout applies).
	Call(addr Addr, req *Request) (*Response, error)
	// CallCtx is Call with a caller-supplied context: the context's
	// deadline bounds the round trip and its cancellation aborts the wait.
	// Many CallCtx invocations may be in flight concurrently; the TCP
	// fabric multiplexes them over shared pooled connections.
	CallCtx(ctx context.Context, addr Addr, req *Request) (*Response, error)
	// Serve installs the handler for incoming requests. It must be called
	// exactly once before the first Call arrives.
	Serve(h Handler)
	// Close tears the endpoint down; subsequent calls to it fail.
	Close() error
}

// ErrUnreachable reports a dead or unknown endpoint.
var ErrUnreachable = errors.New("transport: peer unreachable")

// ErrOverloaded reports backpressure, not death: the peer (or this
// client's own in-flight cap) is saturated and the request was shed
// before execution. Unlike ErrUnreachable the peer is alive — callers
// should back off or retry elsewhere rather than declare it dead.
var ErrOverloaded = errors.New("transport: peer overloaded")

// FanoutResult is one peer's outcome from a Fanout.
type FanoutResult struct {
	Addr Addr
	Resp *Response
	Err  error
}

// OK reports whether the peer answered and accepted the request.
func (r FanoutResult) OK() bool { return r.Err == nil && r.Resp != nil && r.Resp.OK }

// Fanout issues the same request to every address in parallel and returns
// the per-peer results in input order. It is the building block for
// parallel maintenance RPCs: liveness sweeps, link negotiation, neighbour
// sampling probes.
//
// A cancelled (or expired) context fails every outstanding call, so the
// results cannot distinguish a dead peer from a caller that gave up.
// Callers must check ctx.Err() before interpreting failures as dead
// peers — the same convention the data path follows for single calls.
func Fanout(ctx context.Context, t Transport, addrs []Addr, req *Request) []FanoutResult {
	results := make([]FanoutResult, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr Addr) {
			defer wg.Done()
			resp, err := t.CallCtx(ctx, addr, req)
			results[i] = FanoutResult{Addr: addr, Resp: resp, Err: err}
		}(i, addr)
	}
	wg.Wait()
	return results
}

// Broadcast sends the request to every address in parallel, discarding
// responses, and reports how many peers answered OK. Use it for
// notifications whose individual outcomes don't matter (unlink storms,
// ring announcements). A zero count under a cancelled context means the
// caller gave up, not that every peer is dead — check ctx.Err() before
// reading anything into the number.
func Broadcast(ctx context.Context, t Transport, addrs []Addr, req *Request) int {
	ok := 0
	for _, r := range Fanout(ctx, t, addrs, req) {
		if r.OK() {
			ok++
		}
	}
	return ok
}
