// Package sampling implements the random-walk machinery Oscar uses to learn
// the key distribution where it matters.
//
// Mercury introduced uniform peer sampling by random walks; Oscar reuses the
// technique but restricts walkers to nested subpopulations: "to sample the
// subsets of the population the Oscar nodes use random walkers which do not
// visit nodes with identifiers that do not belong to the current population".
//
// The walk graph is the undirected view of the overlay (long-range
// out-links plus ring successor/predecessor), filtered to alive peers whose
// keys lie in the target range. Because peer degrees vary, a plain walk
// would over-sample high-degree peers; the Metropolis–Hastings correction
// (accept a move from v to u with probability min(1, deg(v)/deg(u)))
// makes the stationary distribution uniform over the range's peers.
package sampling

import (
	"errors"
	"math/rand"
	"sort"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/keyspace"
)

// ErrEmptyRange reports that a walk or estimate was requested on a range
// with no alive starting peer.
var ErrEmptyRange = errors.New("sampling: no alive peer in range")

// Walker performs restricted random walks on one network. It is not safe
// for concurrent use; create one Walker per goroutine.
type Walker struct {
	net *graph.Network
	rng *rand.Rand

	// scratch buffer reused across neighbour enumerations.
	buf []graph.NodeID
}

// NewWalker creates a walker over the network using the given RNG stream.
func NewWalker(net *graph.Network, rng *rand.Rand) *Walker {
	return &Walker{net: net, rng: rng}
}

// eligibleNeighbors appends to dst the alive neighbours of id (ring
// successor and predecessor, long-range out-links and in-links) whose keys
// lie in rg. The list is a multiset: an edge reachable two ways (say a peer
// that is both the successor and a link target) appears twice. Because ring
// pointers and in/out lists mirror each other, the multiplicity of (v,u)
// equals that of (u,v), which keeps the Metropolis–Hastings proposal
// symmetric — the condition for a uniform stationary distribution.
func (w *Walker) eligibleNeighbors(dst []graph.NodeID, id graph.NodeID, rg keyspace.Range) []graph.NodeID {
	n := w.net.Node(id)
	consider := func(t graph.NodeID) {
		if t == graph.NoNode || t == id {
			return
		}
		tn := w.net.Node(t)
		if !tn.Alive || !rg.Contains(tn.Key) {
			return
		}
		dst = append(dst, t)
	}
	consider(n.Succ)
	consider(n.Pred)
	for _, t := range n.Out {
		consider(t)
	}
	for _, t := range n.In {
		consider(t)
	}
	return dst
}

// degreeIn returns the number of eligible neighbours of id within rg.
func (w *Walker) degreeIn(id graph.NodeID, rg keyspace.Range) int {
	w.buf = w.eligibleNeighbors(w.buf[:0], id, rg)
	return len(w.buf)
}

// lazyProb is the per-step probability of staying put. A lazy chain is
// aperiodic on every graph; without it, near-bipartite walk graphs (e.g. a
// range containing exactly two peers, whose ring edges form a 2-cycle) lock
// the walker to the parity of the step count and samples never mix.
const lazyProb = 1.0 / 3

// Step advances the walk one Metropolis–Hastings step from id within rg and
// returns the next position (possibly id itself: the chain is lazy, and
// rejected moves or a peer with no eligible neighbour also stay).
func (w *Walker) Step(id graph.NodeID, rg keyspace.Range) graph.NodeID {
	if w.rng.Float64() < lazyProb {
		return id
	}
	w.buf = w.eligibleNeighbors(w.buf[:0], id, rg)
	dv := len(w.buf)
	if dv == 0 {
		return id
	}
	next := w.buf[w.rng.Intn(dv)]
	du := w.degreeIn(next, rg) // note: clobbers w.buf, next already chosen
	if du == 0 {
		// Should not happen (we are a neighbour of next), but never walk
		// into a dead end.
		return id
	}
	// MH acceptance for uniform target: min(1, deg(v)/deg(u)).
	if du > dv && w.rng.Float64() >= float64(dv)/float64(du) {
		return id
	}
	return next
}

// Walk performs `steps` MH steps from start within rg and returns the final
// position. start must be alive and inside rg.
func (w *Walker) Walk(start graph.NodeID, rg keyspace.Range, steps int) (graph.NodeID, error) {
	n := w.net.Node(start)
	if !n.Alive || !rg.Contains(n.Key) {
		return graph.NoNode, ErrEmptyRange
	}
	cur := start
	for i := 0; i < steps; i++ {
		cur = w.Step(cur, rg)
	}
	return cur, nil
}

// SampleChain draws `count` approximately-uniform peers from rg by running
// one chained walk from start: a burn-in of `steps` moves, then one sample
// every `steps` moves. Chaining amortises the burn-in across samples, which
// is what a deployed walker would do to save messages.
//
// The returned Cost is the total number of walk messages spent.
func (w *Walker) SampleChain(start graph.NodeID, rg keyspace.Range, count, steps int) (samples []graph.NodeID, cost int, err error) {
	cur, err := w.Walk(start, rg, steps)
	if err != nil {
		return nil, 0, err
	}
	cost = steps
	samples = make([]graph.NodeID, 0, count)
	for len(samples) < count {
		samples = append(samples, cur)
		var werr error
		cur, werr = w.Walk(cur, rg, steps)
		if werr != nil {
			return nil, cost, werr
		}
		cost += steps
	}
	return samples, cost, nil
}

// UniformInRange returns one approximately-uniform alive peer from rg.
func (w *Walker) UniformInRange(start graph.NodeID, rg keyspace.Range, steps int) (graph.NodeID, int, error) {
	id, err := w.Walk(start, rg, steps)
	return id, steps, err
}

// EstimateMedian estimates the median identifier of the alive peers in rg
// (in clockwise order from rg.Start) from `count` chained samples of `steps`
// moves each. The returned key is one of the sampled peers' keys: the one
// splitting the sample set in half.
func (w *Walker) EstimateMedian(start graph.NodeID, rg keyspace.Range, count, steps int) (keyspace.Key, int, error) {
	samples, cost, err := w.SampleChain(start, rg, count, steps)
	if err != nil {
		return 0, cost, err
	}
	keys := make([]keyspace.Key, len(samples))
	for i, id := range samples {
		keys[i] = w.net.Node(id).Key
	}
	return MedianFrom(rg.Start, keys), cost, nil
}

// MedianFrom returns the median of keys in clockwise order from origin: the
// key m such that half the keys lie in [origin, m) and half in [m, ...).
// With an even count the upper-middle key is returned, matching the
// partition convention that the far half contains ⌈n/2⌉ peers.
func MedianFrom(origin keyspace.Key, keys []keyspace.Key) keyspace.Key {
	if len(keys) == 0 {
		return origin
	}
	sorted := append([]keyspace.Key(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool {
		return origin.Distance(sorted[i]) < origin.Distance(sorted[j])
	})
	return sorted[len(sorted)/2]
}
