// Package smallworld provides the idealised Kleinberg reference
// construction: rank-harmonic long-range links drawn with full global
// knowledge of the peer population.
//
// It is the upper bound both Oscar and Mercury approximate — Oscar through
// nested median sampling, Mercury through a histogram. The simulator uses it
// as a calibration baseline and the ablation harness compares how close each
// approximation gets.
package smallworld

import (
	"math"
	"math/rand"

	"github.com/oscar-overlay/oscar/internal/graph"
	"github.com/oscar-overlay/oscar/internal/ring"
)

// WireStats reports one wiring pass over the whole network.
type WireStats struct {
	LinksWanted int
	LinksMade   int
	Refusals    int
}

// WireAll rebuilds every alive peer's long-range links with exact
// rank-harmonic draws: for each link, rank r is drawn from pdf(r) ∝ 1/r over
// [1, n-1] and the peer r positions clockwise becomes the candidate. The
// same in-degree admission rule applies; retries mirror the Oscar defaults.
func WireAll(net *graph.Network, rg *ring.Ring, retries int, rnd *rand.Rand) WireStats {
	var stats WireStats
	// Snapshot the alive population in clockwise order once; positions stay
	// valid for the whole pass because wiring changes no keys or liveness.
	alive := rg.AliveOrdered()
	n := len(alive)
	pos := make(map[graph.NodeID]int, n)
	for i, id := range alive {
		pos[id] = i
	}
	if n < 2 {
		return stats
	}
	for _, u := range alive {
		node := net.Node(u)
		stats.LinksWanted += node.MaxOut
		net.DropLinks(u)
		for slot := 0; slot < node.MaxOut; slot++ {
			if wireOne(net, alive, pos[u], retries, rnd, &stats) {
				stats.LinksMade++
			}
		}
	}
	return stats
}

func wireOne(net *graph.Network, alive []graph.NodeID, upos, retries int, rnd *rand.Rand, stats *WireStats) bool {
	n := len(alive)
	for attempt := 0; attempt <= retries; attempt++ {
		r := HarmonicRank(rnd, n-1)
		cand := alive[(upos+r)%n]
		switch err := net.AddLink(alive[upos], cand); err {
		case nil:
			return true
		case graph.ErrRefused:
			stats.Refusals++
		default:
			// duplicate: redraw
		}
	}
	return false
}

// HarmonicRank draws a rank in [1, max] with pdf(r) ∝ 1/r via inverse
// transform on the continuous relaxation (Symphony's draw).
func HarmonicRank(rnd *rand.Rand, max int) int {
	if max <= 1 {
		return 1
	}
	r := int(math.Exp(rnd.Float64() * math.Log(float64(max))))
	if r < 1 {
		r = 1
	}
	if r > max {
		r = max
	}
	return r
}
